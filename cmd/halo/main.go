// Command halo drives the HALO pipeline over program binaries, mirroring
// the paper artifact's workflow (halo baseline / halo run) plus the
// individual stages:
//
//	halo build         -w povray -scale test -o povray.hbin  build a workload binary
//	halo disasm        [-fused] povray.hbin                  disassemble a binary
//	halo profile       [-seed N] [-o p.hprof] povray.hbin    profile; print graph, save profile
//	halo profile-merge -o m.hprof a.hprof b.hprof ...        merge saved profiles
//	halo groups        [flags] povray.hbin                   print allocation groups (Figure 9 view)
//	halo opt           [-profile m.hprof] -o ... povray.hbin rewrite + emit runtime policy
//	halo run           [-policy p.json] [-alloc halo|jemalloc|ptmalloc|random] povray.hbin
//	halo pipeline      -w povray                             end-to-end: profile test, measure ref
//	halo list                                                list workloads
//
// Flags come before the positional binary argument.
//
// Binaries are the encoded mini-ISA images of internal/isa; profiles are
// the versioned images of internal/profstore; policies are JSON documents
// carrying selectors and group-allocator settings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"halo/internal/cache"
	"halo/internal/core"
	"halo/internal/halloc"
	"halo/internal/isa"
	"halo/internal/measure"
	"halo/internal/obs"
	"halo/internal/policy"
	"halo/internal/profile"
	"halo/internal/profstore"
	"halo/internal/rewrite"
	"halo/internal/vm"
	"halo/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "disasm":
		err = cmdDisasm(args)
	case "profile":
		err = cmdProfile(args)
	case "profile-merge":
		err = cmdProfileMerge(args)
	case "groups":
		err = cmdGroups(args)
	case "opt":
		err = cmdOpt(args)
	case "run":
		err = cmdRun(args)
	case "pipeline":
		err = cmdPipeline(args)
	case "list":
		err = cmdList(args)
	case "version":
		fmt.Println(obs.Build().String())
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "halo: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "halo %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: halo <command> [flags]

commands:
  build          build a workload into a binary image
  disasm         disassemble a binary image (-fused: predecoded stream)
  profile        profile a binary; print its affinity graph, save with -o
  profile-merge  merge saved profiles from independent training runs
  groups         print the allocation groups formed from a profile
  opt            run the full pipeline, emit rewritten binary + policy
  run            execute a binary under an allocator policy
  pipeline       end-to-end: profile on test input, measure on ref input
  list           list available workloads
  version        print build information`)
}

// Policy is the JSON document `halo opt` emits and `halo run` consumes —
// the same document cmd/halod serves for finished jobs (internal/policy).
type Policy = policy.Doc

// PolicySel is one lowered selector.
type PolicySel = policy.Sel

// PolicyHalloc carries group-allocator tuning.
type PolicyHalloc = policy.Halloc

func loadProgram(path string) (*isa.Program, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return isa.Decode(img)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	name := fs.String("w", "", "workload name")
	scaleSel := fs.String("scale", "test", "test, ref, or an integer")
	out := fs.String("o", "", "output path (default <workload>.hbin)")
	fs.Parse(args)
	w, ok := workloads.Get(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q (try: halo list)", *name)
	}
	scale := w.TestScale
	switch *scaleSel {
	case "test":
	case "ref":
		scale = w.RefScale
	default:
		if _, err := fmt.Sscanf(*scaleSel, "%d", &scale); err != nil {
			return fmt.Errorf("bad scale %q", *scaleSel)
		}
	}
	p := w.Build(scale)
	img, err := p.Encode()
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *name + ".hbin"
	}
	if err := os.WriteFile(path, img, 0o644); err != nil {
		return err
	}
	st := p.Stat()
	fmt.Printf("wrote %s: %d bytes, %d functions (%d lib), %d instructions, %d call sites\n",
		path, len(img), st.Funcs, st.LibFuncs, st.Insts, st.CallSites)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	fused := fs.Bool("fused", false, "render the predecoded stream with superinstruction fusion")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: halo disasm [-fused] <binary>")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	if *fused {
		fmt.Print(vm.DisasmFused(p))
		return nil
	}
	fmt.Print(p.Disasm())
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	seed := fs.Uint64("seed", 7, "training seed")
	runs := fs.Int("runs", 1, "independent training runs (seeds seed, seed+1, ...), profiled concurrently and merged")
	workers := fs.Int("workers", 0, "worker pool for -runs > 1 (0 = one per CPU)")
	dist := fs.Uint64("affinity-distance", 128, "affinity distance A in bytes")
	top := fs.Int("top", 20, "contexts to print")
	trace := fs.Bool("trace", false, "record the data reference trace (hot-data-streams input)")
	out := fs.String("o", "", "save the profile image (input to profile-merge, opt, halod)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: halo profile [flags] <binary>")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := core.Config{ProfileSeed: *seed}
	cfg.Profile.AffinityDistance = *dist
	cfg.Profile.RecordTrace = *trace
	prof, err := core.ProfileN(p, cfg, *runs, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d allocations (%d tracked), %d contexts, %d macro accesses\n",
		p.Name, prof.TotalAllocs, prof.TrackedAllocs, len(prof.Contexts), prof.TotalAccesses)
	fmt.Printf("affinity graph: %d nodes, %d edges after 90%% coverage filter (%d raw nodes)\n",
		prof.Graph.NumNodes(), prof.Graph.NumEdges(), prof.RawGraph.NumNodes())
	fmt.Printf("\nhottest contexts:\n%s", prof.DescribeTop(*top))
	if *out != "" {
		if err := profstore.Save(*out, prof); err != nil {
			return err
		}
		fmt.Printf("\nwrote profile %s\n", *out)
	}
	return nil
}

func cmdProfileMerge(args []string) error {
	fs := flag.NewFlagSet("profile-merge", flag.ExitOnError)
	out := fs.String("o", "", "output profile image (omit to only print the merged summary)")
	coverage := fs.Float64("coverage", profstore.DefaultCoverage, "re-filter coverage for the merged graph")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("usage: halo profile-merge [-o merged.hprof] <profile>...")
	}
	profs := make([]*profile.Profile, 0, fs.NArg())
	for _, path := range fs.Args() {
		prof, err := profstore.Load(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("%s: program %s, %d contexts, %d accesses\n",
			path, prof.ProgName, len(prof.Contexts), prof.TotalAccesses)
		profs = append(profs, prof)
	}
	merged, err := profstore.MergeWithCoverage(*coverage, profs...)
	if err != nil {
		return err
	}
	fmt.Printf("merged: program %s, %d contexts, %d accesses, graph %d nodes / %d edges (%d raw nodes)\n",
		merged.ProgName, len(merged.Contexts), merged.TotalAccesses,
		merged.Graph.NumNodes(), merged.Graph.NumEdges(), merged.RawGraph.NumNodes())
	if *out != "" {
		if err := profstore.Save(*out, merged); err != nil {
			return err
		}
		fmt.Printf("wrote profile %s\n", *out)
	}
	return nil
}

func cmdGroups(args []string) error {
	fs := flag.NewFlagSet("groups", flag.ExitOnError)
	seed := fs.Uint64("seed", 7, "training seed")
	maxGroups := fs.Int("max-groups", 0, "cap the number of groups")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: halo groups [flags] <binary>")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := core.Config{ProfileSeed: *seed}
	cfg.Group.MaxGroups = *maxGroups
	opt, err := core.Optimize(p, cfg)
	if err != nil {
		return err
	}
	fmt.Print(opt.GroupReport())
	fmt.Printf("\nselectors:\n")
	for _, s := range opt.Selectors.Selectors {
		fmt.Printf("  %s\n", s)
	}
	return nil
}

func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	out := fs.String("o", "", "rewritten binary path (default <in>.halo.hbin)")
	polOut := fs.String("policy", "", "policy path (default <in>.policy.json)")
	seed := fs.Uint64("seed", 7, "training seed")
	profPath := fs.String("profile", "", "use a saved profile image instead of a fresh training run")
	chunk := fs.Uint64("chunk-size", 0, "group chunk size")
	maxSpare := fs.Int("max-spare-chunks", 1, "spare chunks kept")
	maxGroups := fs.Int("max-groups", 0, "cap the number of groups")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: halo opt [flags] <binary>")
	}
	in := fs.Arg(0)
	p, err := loadProgram(in)
	if err != nil {
		return err
	}
	cfg := core.Config{ProfileSeed: *seed}
	cfg.Group.MaxGroups = *maxGroups
	var opt *core.Optimized
	if *profPath != "" {
		prof, err := profstore.Load(*profPath)
		if err != nil {
			return err
		}
		if prof.ProgName != p.Name {
			return fmt.Errorf("profile %s is for program %q, not %q", *profPath, prof.ProgName, p.Name)
		}
		prof.Prog = p
		opt, err = core.OptimizeFromProfile(p, prof, cfg)
		if err != nil {
			return err
		}
	} else if opt, err = core.Optimize(p, cfg); err != nil {
		return err
	}
	img, err := opt.Rewrite.Prog.Encode()
	if err != nil {
		return err
	}
	outPath := *out
	if outPath == "" {
		outPath = strings.TrimSuffix(in, ".hbin") + ".halo.hbin"
	}
	if err := os.WriteFile(outPath, img, 0o644); err != nil {
		return err
	}
	pol := Policy{
		Program: p.Name,
		NumBits: opt.Rewrite.NumBits,
		Sites:   map[string]int{},
		Halloc: PolicyHalloc{
			ChunkSize: *chunk,
			NoSpare:   *maxSpare == 0,
		},
	}
	for site, bit := range opt.Rewrite.SiteBits {
		pol.Sites[site.String()] = bit
	}
	for _, s := range opt.BitSelectors {
		pol.Selectors = append(pol.Selectors, PolicySel{Group: s.Group, Conj: s.Conj})
	}
	polPath := *polOut
	if polPath == "" {
		polPath = strings.TrimSuffix(in, ".hbin") + ".policy.json"
	}
	data, err := json.MarshalIndent(pol, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(polPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d instrumented sites, %d inserted instructions) and %s (%d selectors)\n",
		outPath, opt.Rewrite.NumBits, opt.Rewrite.Inserted, polPath, len(pol.Selectors))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	allocName := fs.String("alloc", "jemalloc", "jemalloc, ptmalloc, halo, or random")
	polPath := fs.String("policy", "", "policy JSON for -alloc halo")
	seed := fs.Uint64("seed", 1001, "run seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: halo run [flags] <binary>")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	pol := measure.Policy{}
	switch *allocName {
	case "jemalloc":
		pol.Kind = measure.Jemalloc
	case "ptmalloc":
		pol.Kind = measure.Ptmalloc
	case "random":
		pol.Kind = measure.RandomPools
	case "halo":
		if *polPath == "" {
			return fmt.Errorf("-alloc halo requires -policy")
		}
		data, err := os.ReadFile(*polPath)
		if err != nil {
			return err
		}
		var doc Policy
		if err := json.Unmarshal(data, &doc); err != nil {
			return err
		}
		pol.Kind = measure.HALO
		pol.Rewritten = p // the input should already be the rewritten binary
		pol.NumBits = doc.NumBits
		for _, s := range doc.Selectors {
			pol.Selectors = append(pol.Selectors, halloc.BitSelector{Group: s.Group, Conj: s.Conj})
		}
		pol.Halloc = halloc.Config{
			ChunkSize:         doc.Halloc.ChunkSize,
			NoSpare:           doc.Halloc.NoSpare,
			AlwaysReuseChunks: doc.Halloc.AlwaysReuse,
		}
	default:
		return fmt.Errorf("unknown allocator %q", *allocName)
	}
	res, err := measure.Run(p, pol, *seed, cache.XeonW2195())
	if err != nil {
		return err
	}
	fmt.Printf("result=%d steps=%d loads=%d stores=%d\n", res.Result, res.Steps, res.Loads, res.Stores)
	fmt.Printf("%s\n", res.Cache)
	fmt.Printf("cycles=%d time=%.6fs\n", res.Cycles, res.Seconds)
	fmt.Printf("allocator: %s", res.Alloc)
	if res.GroupedAllocs+res.ForwardedAlloc > 0 {
		fmt.Printf("; grouped=%d forwarded=%d frag=%.2f%%/%dB",
			res.GroupedAllocs, res.ForwardedAlloc, res.FragPct, res.FragBytes)
	}
	fmt.Println()
	return nil
}

func cmdPipeline(args []string) error {
	fs := flag.NewFlagSet("pipeline", flag.ExitOnError)
	name := fs.String("w", "", "workload name")
	trials := fs.Int("trials", 5, "measured trials")
	fs.Parse(args)
	w, ok := workloads.Get(*name)
	if !ok {
		return fmt.Errorf("unknown workload %q (try: halo list)", *name)
	}
	machine := cache.XeonW2195()
	test := w.Build(w.TestScale)
	cfg := core.Config{}
	opt, err := core.Optimize(test, cfg)
	if err != nil {
		return err
	}
	fmt.Print(opt.GroupReport())
	ref := w.Build(w.RefScale)
	rw, err := rewrite.Instrument(ref, opt.Selectors.Sites)
	if err != nil {
		return err
	}
	var sels []halloc.BitSelector
	for _, s := range opt.Selectors.Selectors {
		lowered, _ := rewrite.LowerSelectors(s.Conj, rw.SiteBits)
		if len(lowered) > 0 {
			sels = append(sels, halloc.BitSelector{Group: s.Group, Conj: lowered})
		}
	}
	hc := halloc.Config{ChunkSize: w.ChunkSize, NoSpare: w.NoSpare, AlwaysReuseChunks: w.AlwaysReuse}
	base, err := measure.MeasureTrials(ref, measure.Policy{Kind: measure.Jemalloc}, *trials, 1000, machine)
	if err != nil {
		return err
	}
	haloSum, err := measure.MeasureTrials(ref, measure.Policy{
		Kind: measure.HALO, Rewritten: rw.Prog, Selectors: sels, NumBits: rw.NumBits, Halloc: hc,
	}, *trials, 1000, machine)
	if err != nil {
		return err
	}
	miss := measure.Improvement(base.L1DMiss.Median, haloSum.L1DMiss.Median)
	speed := measure.Improvement(base.Seconds.Median, haloSum.Seconds.Median)
	fmt.Printf("\nref input (%d trials): L1D miss reduction %+.2f%%, speedup %+.2f%%\n", *trials, miss, speed)
	fmt.Printf("baseline: %.0f misses, %.6fs; HALO: %.0f misses, %.6fs\n",
		base.L1DMiss.Median, base.Seconds.Median, haloSum.L1DMiss.Median, haloSum.Seconds.Median)
	return nil
}

func cmdList(args []string) error {
	names := workloads.Names()
	sort.Strings(names)
	for _, n := range names {
		w := workloads.MustGet(n)
		fmt.Printf("%-10s test=%-6d ref=%-6d %s\n", w.Name, w.TestScale, w.RefScale, w.Description)
	}
	return nil
}
