package main

import (
	"os"
	"path/filepath"
	"testing"

	"halo/internal/profstore"
	"halo/internal/workloads"
)

// TestProfileMergeSmoke drives the profile save/load/merge surface the way
// a user would: build a binary, profile it at two seeds saving both
// profiles, merge them, and optimize from the merged profile.
func TestProfileMergeSmoke(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "art.hbin")

	w := workloads.MustGet("art")
	img, err := w.Build(w.TestScale).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bin, img, 0o644); err != nil {
		t.Fatal(err)
	}

	profA := filepath.Join(dir, "a.hprof")
	profB := filepath.Join(dir, "b.hprof")
	if err := cmdProfile([]string{"-seed", "3", "-o", profA, bin}); err != nil {
		t.Fatalf("profile -seed 3: %v", err)
	}
	if err := cmdProfile([]string{"-seed", "5", "-o", profB, bin}); err != nil {
		t.Fatalf("profile -seed 5: %v", err)
	}

	merged := filepath.Join(dir, "merged.hprof")
	if err := cmdProfileMerge([]string{"-o", merged, profA, profB}); err != nil {
		t.Fatalf("profile-merge: %v", err)
	}
	m, err := profstore.Load(merged)
	if err != nil {
		t.Fatalf("merged profile does not load: %v", err)
	}
	a, err := profstore.Load(profA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := profstore.Load(profB)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalAllocs != a.TotalAllocs+b.TotalAllocs {
		t.Fatalf("merged allocs = %d, want %d", m.TotalAllocs, a.TotalAllocs+b.TotalAllocs)
	}

	// The merged profile must drive the optimize path.
	outBin := filepath.Join(dir, "art.halo.hbin")
	outPol := filepath.Join(dir, "art.policy.json")
	if err := cmdOpt([]string{"-profile", merged, "-o", outBin, "-policy", outPol, bin}); err != nil {
		t.Fatalf("opt -profile: %v", err)
	}
	for _, path := range []string{outBin, outPol} {
		if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
			t.Fatalf("opt did not write %s", path)
		}
	}

	// Error paths: mismatched program, missing file.
	if err := cmdProfileMerge([]string{filepath.Join(dir, "missing.hprof")}); err == nil {
		t.Fatal("merge of missing file did not fail")
	}
	pov := workloads.MustGet("povray")
	povBin := filepath.Join(dir, "povray.hbin")
	povImg, err := pov.Build(pov.TestScale).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(povBin, povImg, 0o644); err != nil {
		t.Fatal(err)
	}
	povProf := filepath.Join(dir, "pov.hprof")
	if err := cmdProfile([]string{"-o", povProf, povBin}); err != nil {
		t.Fatal(err)
	}
	if err := cmdProfileMerge([]string{profA, povProf}); err == nil {
		t.Fatal("cross-program merge did not fail")
	}
	if err := cmdOpt([]string{"-profile", povProf, "-o", outBin, bin}); err == nil {
		t.Fatal("opt with mismatched profile did not fail")
	}
}
