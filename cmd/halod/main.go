// Command halod is the HALO optimization daemon: the service layer of
// internal/service behind a plain HTTP listener. Training machines upload
// program and profile images, the daemon merges profiles, runs the
// pipeline on a bounded worker pool, and serves the optimized artifacts
// (group reports, rewritten binaries, allocator policies) from a
// content-addressed cache.
//
//	halod [-addr :7920] [-workers N] [-queue N] [-max-upload BYTES]
//
// Typical session (see README.md for the full walkthrough):
//
//	halo build -w povray -o povray.hbin
//	halo profile -seed 3 -o povray.s3.hprof povray.hbin
//	curl --data-binary @povray.hbin   $H/v1/programs
//	curl --data-binary @povray.s3.hprof $H/v1/profiles
//	curl -d '{"program":"...","profiles":["..."]}' $H/v1/optimize
//	curl "$H/v1/jobs/job-000001?wait=1"
//	curl -o povray.halo.hbin $H/v1/jobs/job-000001/binary
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"halo/internal/service"
)

func main() {
	addr := flag.String("addr", ":7920", "listen address")
	workers := flag.Int("workers", 0, "optimization worker pool size (0 = service default)")
	queue := flag.Int("queue", 0, "job queue depth (0 = service default)")
	maxUpload := flag.Int64("max-upload", 0, "max upload size in bytes (0 = service default)")
	trainWorkers := flag.Int("training-workers", 0, "per-job pool for concurrent training runs (0 = one per CPU)")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxUploadBytes:  *maxUpload,
		TrainingWorkers: *trainWorkers,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-stop
		log.Printf("halod: shutting down")
		// The drain window must outlast the service's longest handler:
		// GET /v1/jobs/{id}?wait=1 long-polls for up to five minutes.
		ctx, cancel := context.WithTimeout(context.Background(), 6*time.Minute)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	log.Printf("halod: listening on %s (%s)", *addr, describe(srv))
	err := httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		// Shutdown closed the listener; wait for in-flight requests
		// (long-polling job waiters included) to finish draining.
		<-drained
	}
	srv.Close() // drain the worker pool
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "halod: %v\n", err)
		os.Exit(1)
	}
}

func describe(s *service.Server) string {
	st := s.Stats()
	return fmt.Sprintf("%d workers", st.Workers)
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
