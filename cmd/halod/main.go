// Command halod is the HALO optimization daemon: the service layer of
// internal/service behind a plain HTTP listener. Training machines upload
// program and profile images, the daemon merges profiles, runs the
// pipeline on a bounded worker pool, and serves the optimized artifacts
// (group reports, rewritten binaries, allocator policies) from a
// content-addressed cache. Metrics are served at GET /metrics (Prometheus
// text format); -debug-addr opens a second, normally private listener with
// net/http/pprof, expvar and another /metrics.
//
//	halod [-addr :7920] [-workers N] [-queue N] [-max-upload BYTES]
//	      [-debug-addr :7921]
//
// Typical session (see README.md for the full walkthrough):
//
//	halo build -w povray -o povray.hbin
//	halo profile -seed 3 -o povray.s3.hprof povray.hbin
//	curl --data-binary @povray.hbin   $H/v1/programs
//	curl --data-binary @povray.s3.hprof $H/v1/profiles
//	curl -d '{"program":"...","profiles":["..."]}' $H/v1/optimize
//	curl "$H/v1/jobs/job-000001?wait=1"
//	curl -o povray.halo.hbin $H/v1/jobs/job-000001/binary
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"halo/internal/obs"
	"halo/internal/service"
)

func main() {
	addr := flag.String("addr", ":7920", "listen address")
	debugAddr := flag.String("debug-addr", "", "debug listener (pprof, expvar, metrics); empty = off")
	workers := flag.Int("workers", 0, "optimization worker pool size (0 = service default)")
	queue := flag.Int("queue", 0, "job queue depth (0 = service default)")
	maxUpload := flag.Int64("max-upload", 0, "max upload size in bytes (0 = service default)")
	trainWorkers := flag.Int("training-workers", 0, "per-job pool for concurrent training runs (0 = one per CPU)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxUploadBytes:  *maxUpload,
		TrainingWorkers: *trainWorkers,
		Logger:          logger,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-stop
		logger.Info("shutting down")
		// The drain window must outlast the service's longest handler:
		// GET /v1/jobs/{id}?wait=1 long-polls for up to five minutes.
		ctx, cancel := context.WithTimeout(context.Background(), 6*time.Minute)
		defer cancel()
		httpSrv.Shutdown(ctx)
	}()

	logger.Info("listening",
		"addr", *addr, "workers", srv.Stats().Workers, "build", obs.Build().String())
	err := httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		// Shutdown closed the listener; wait for in-flight requests
		// (long-polling job waiters included) to finish draining.
		<-drained
	}
	srv.Close() // drain the worker pool
	if err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "halod: %v\n", err)
		os.Exit(1)
	}
}

// serveDebug runs the private debug listener: pprof, expvar, and the
// process-wide metrics (the service's own registry lives on the main
// listener's /metrics, which also renders the process registry).
func serveDebug(logger *slog.Logger, addr string) {
	expvar.Publish("halo_metrics", expvar.Func(func() any {
		return obs.Default.Snapshot()
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	logger.Info("debug listener", "addr", addr)
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logger.Error("debug listener failed", "err", err)
	}
}
