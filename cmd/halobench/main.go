// Command halobench regenerates the paper's evaluation tables and figures
// (§5) over the simulated substrate, printing aligned text tables and
// optionally writing machine-readable JSON, in the spirit of the
// artifact's `halo baseline` / `halo run` / `halo plot` workflow.
//
// Usage:
//
//	halobench [-run all|fig9,fig12,fig13,fig14,fig15,tab1,baseline,roms,adversarial]
//	          [-trials N] [-quick] [-workloads a,b,c] [-parallel N]
//	          [-json out.json] [-v]
//
// The "adversarial" experiment runs the hostile-heap workload family (the
// internal/adversary search engine's discovered sequences) through the
// full pipeline and reports where grouping helps, hurts (REGRESSED) or is
// defeated, plus a shadow-heap corruption verdict per workload.
//
// The -json document carries the rendered tables plus one flat result
// record per measured workload×technique pair (miss reduction, speedup,
// simulated seconds, ns/op — the wall-clock of one serial measurement
// run, timed outside the worker pools — and a regressed flag set when the
// technique increased misses over its baseline), per-workload profiling throughput
// (events consumed by the training run's profiler and events/sec), a
// per-workload "synthesis" section (the wall-clock of turning the training
// profile into groups, selectors and the HDS policy), a "metrics" section
// (a snapshot of the process metrics registry plus per-workload pipeline
// stage spans), and the sweep's wall-clock — the format the repository's
// BENCH_*.json trajectory records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"halo/internal/experiments"
	"halo/internal/obs"
)

// jsonMetrics is the observability section of the -json document: the
// Default registry's snapshot (VM, pool and profiler substrate counters)
// and the per-workload pipeline stage spans.
type jsonMetrics struct {
	Global map[string]float64           `json:"global"`
	Stages []experiments.WorkloadStages `json:"stages"`
}

// jsonDoc is the -json output document.
type jsonDoc struct {
	Trials    int                       `json:"trials"`
	Quick     bool                      `json:"quick"`
	Seed      uint64                    `json:"seed"`
	Parallel  int                       `json:"parallel"`
	Workloads []string                  `json:"workloads,omitempty"`
	Results   []experiments.BenchResult `json:"results"`
	Profiling []experiments.ProfileStat `json:"profiling"`
	Synthesis []experiments.SynthStat   `json:"synthesis"`
	Metrics   jsonMetrics               `json:"metrics"`
	Tables    []*experiments.Table      `json:"tables"`
	WallNs    int64                     `json:"wall_ns"`
}

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids (fig9, fig12, fig13, fig14, fig15, tab1, baseline, roms, adversarial) or 'all'")
		trials    = flag.Int("trials", 5, "measured trials per configuration (paper: 10)")
		quick     = flag.Bool("quick", false, "reduced trials and test-scale inputs")
		workloads = flag.String("workloads", "", "restrict to a comma-separated workload subset")
		parallel  = flag.Int("parallel", 0, "workload-level worker pool per experiment (0 = one per CPU, 1 = serial)")
		jsonOut   = flag.String("json", "", "also write machine-readable results as JSON to this file")
		verbose   = flag.Bool("v", false, "log progress to stderr")
		seed      = flag.Uint64("seed", 0, "measurement seed base (0 = default)")
	)
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	opts := experiments.Options{
		Trials:   *trials,
		Quick:    *quick,
		Log:      logw,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	engine := experiments.NewEngine(opts)
	ids := strings.Split(*run, ",")
	start := time.Now()
	tables, err := engine.Run(ids)
	wall := time.Since(start)
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		doc := jsonDoc{
			Trials:    opts.Trials,
			Quick:     *quick,
			Seed:      *seed,
			Parallel:  *parallel,
			Workloads: opts.Workloads,
			Results:   engine.BenchResults(),
			Profiling: engine.ProfileStats(),
			Synthesis: engine.SynthesisStats(),
			Metrics: jsonMetrics{
				Global: obs.Default.Snapshot(),
				Stages: engine.StageStats(),
			},
			Tables: tables,
			WallNs: wall.Nanoseconds(),
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}
