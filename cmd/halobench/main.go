// Command halobench regenerates the paper's evaluation tables and figures
// (§5) over the simulated substrate, printing aligned text tables and
// optionally writing JSON results, in the spirit of the artifact's
// `halo baseline` / `halo run` / `halo plot` workflow.
//
// Usage:
//
//	halobench [-run all|fig9,fig12,fig13,fig14,fig15,tab1,baseline,roms]
//	          [-trials N] [-quick] [-workloads a,b,c] [-json out.json] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"halo/internal/experiments"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids (fig9, fig12, fig13, fig14, fig15, tab1, baseline, roms) or 'all'")
		trials    = flag.Int("trials", 5, "measured trials per configuration (paper: 10)")
		quick     = flag.Bool("quick", false, "reduced trials and test-scale inputs")
		workloads = flag.String("workloads", "", "restrict to a comma-separated workload subset")
		jsonOut   = flag.String("json", "", "also write results as JSON to this file")
		verbose   = flag.Bool("v", false, "log progress to stderr")
		seed      = flag.Uint64("seed", 0, "measurement seed base (0 = default)")
	)
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	opts := experiments.Options{
		Trials: *trials,
		Quick:  *quick,
		Log:    logw,
		Seed:   *seed,
	}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}

	engine := experiments.NewEngine(opts)
	ids := strings.Split(*run, ",")
	tables, err := engine.Run(ids)
	for _, t := range tables {
		fmt.Println(t.Render())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(tables, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "halobench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}
